//! Physical-unit newtypes.
//!
//! Energy, power, and time are easy to confuse when everything is `f64`;
//! these newtypes make the dimensional algebra explicit:
//! `Power * Time = Energy`, `Energy / Time = Power`.
//!
//! Internal representations: energy in picojoules, power in milliwatts,
//! time in nanoseconds — chosen so cache-scale quantities stay near 1.0.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An amount of energy (internally picojoules).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// From picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj)
    }

    /// From nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj * 1e3)
    }

    /// From microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Energy(uj * 1e6)
    }

    /// From millijoules.
    pub fn from_mj(mj: f64) -> Self {
        Energy(mj * 1e9)
    }

    /// From joules.
    pub fn from_joules(j: f64) -> Self {
        Energy(j * 1e12)
    }

    /// In picojoules.
    pub fn pj(&self) -> f64 {
        self.0
    }

    /// In nanojoules.
    pub fn nj(&self) -> f64 {
        self.0 * 1e-3
    }

    /// In millijoules.
    pub fn mj(&self) -> f64 {
        self.0 * 1e-9
    }

    /// In joules.
    pub fn joules(&self) -> f64 {
        self.0 * 1e-12
    }

    /// Scales by a dimensionless factor.
    pub fn scaled(&self, k: f64) -> Energy {
        Energy(self.0 * k)
    }

    /// Ratio to another energy.
    ///
    /// Returns `f64::NAN` if `other` is zero.
    pub fn ratio_to(&self, other: Energy) -> f64 {
        self.0 / other.0
    }
}

/// A power (internally milliwatts).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// From milliwatts.
    pub fn from_mw(mw: f64) -> Self {
        Power(mw)
    }

    /// From microwatts.
    pub fn from_uw(uw: f64) -> Self {
        Power(uw * 1e-3)
    }

    /// From watts.
    pub fn from_watts(w: f64) -> Self {
        Power(w * 1e3)
    }

    /// In milliwatts.
    pub fn mw(&self) -> f64 {
        self.0
    }

    /// In watts.
    pub fn watts(&self) -> f64 {
        self.0 * 1e-3
    }

    /// Scales by a dimensionless factor.
    pub fn scaled(&self, k: f64) -> Power {
        Power(self.0 * k)
    }
}

/// A duration (internally nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(f64);

impl Time {
    /// Zero time.
    pub const ZERO: Time = Time(0.0);

    /// From nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        Time(ns)
    }

    /// From microseconds.
    pub fn from_us(us: f64) -> Self {
        Time(us * 1e3)
    }

    /// From milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Time(ms * 1e6)
    }

    /// From seconds.
    pub fn from_secs(s: f64) -> Self {
        Time(s * 1e9)
    }

    /// From a cycle count at a clock frequency in GHz.
    pub fn from_cycles(cycles: u64, ghz: f64) -> Self {
        Time(cycles as f64 / ghz)
    }

    /// In nanoseconds.
    pub fn ns(&self) -> f64 {
        self.0
    }

    /// In milliseconds.
    pub fn ms(&self) -> f64 {
        self.0 * 1e-6
    }

    /// In seconds.
    pub fn secs(&self) -> f64 {
        self.0 * 1e-9
    }

    /// Number of whole cycles at a clock frequency in GHz.
    pub fn cycles(&self, ghz: f64) -> u64 {
        (self.0 * ghz).round() as u64
    }

    /// Scales by a dimensionless factor.
    pub fn scaled(&self, k: f64) -> Time {
        Time(self.0 * k)
    }
}

macro_rules! impl_linear_ops {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }
        impl AddAssign for $t {
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, rhs: $t) -> $t {
                $t(self.0 - rhs.0)
            }
        }
        impl Mul<f64> for $t {
            type Output = $t;
            fn mul(self, k: f64) -> $t {
                $t(self.0 * k)
            }
        }
        impl Div<f64> for $t {
            type Output = $t;
            fn div(self, k: f64) -> $t {
                $t(self.0 / k)
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                iter.fold($t(0.0), |a, b| a + b)
            }
        }
    };
}

impl_linear_ops!(Energy);
impl_linear_ops!(Power);
impl_linear_ops!(Time);

impl Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, t: Time) -> Energy {
        // mW * ns = 1e-3 W * 1e-9 s = 1e-12 J = pJ
        Energy(self.0 * t.0)
    }
}

impl Mul<Power> for Time {
    type Output = Energy;
    fn mul(self, p: Power) -> Energy {
        p * self
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    fn div(self, t: Time) -> Power {
        Power(self.0 / t.0)
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;
    fn mul(self, n: u64) -> Energy {
        Energy(self.0 * n as f64)
    }
}

fn fmt_scaled(
    f: &mut fmt::Formatter<'_>,
    value: f64,
    steps: &[(f64, &str)],
    base_unit: &str,
) -> fmt::Result {
    let abs = value.abs();
    for &(scale, unit) in steps {
        if abs >= scale {
            return write!(f, "{:.3} {}", value / scale, unit);
        }
    }
    write!(f, "{value:.3} {base_unit}")
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_scaled(
            f,
            self.0,
            &[(1e12, "J"), (1e9, "mJ"), (1e6, "uJ"), (1e3, "nJ")],
            "pJ",
        )
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_scaled(f, self.0, &[(1e3, "W")], "mW")
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_scaled(
            f,
            self.0,
            &[(1e9, "s"), (1e6, "ms"), (1e3, "us")],
            "ns",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_conversions() {
        assert_eq!(Energy::from_nj(1.0).pj(), 1000.0);
        assert_eq!(Energy::from_joules(1.0).pj(), 1e12);
        assert!((Energy::from_pj(2500.0).nj() - 2.5).abs() < 1e-12);
        assert!((Energy::from_mj(1.0).joules() - 1e-3).abs() < 1e-15);
        assert_eq!(Energy::from_uj(1.0).pj(), 1e6);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_mw(100.0) * Time::from_us(1.0);
        // 100 mW for 1 us = 100 nJ.
        assert!((e.nj() - 100.0).abs() < 1e-9);
        let e2 = Time::from_us(1.0) * Power::from_mw(100.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_nj(100.0) / Time::from_us(1.0);
        assert!((p.mw() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_cycles_roundtrip() {
        let t = Time::from_cycles(1000, 1.0);
        assert_eq!(t.ns(), 1000.0);
        assert_eq!(t.cycles(1.0), 1000);
        // 2 GHz: 1000 cycles = 500 ns.
        assert_eq!(Time::from_cycles(1000, 2.0).ns(), 500.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Energy::from_pj(3.0) + Energy::from_pj(4.0);
        assert_eq!(a.pj(), 7.0);
        assert_eq!((a - Energy::from_pj(2.0)).pj(), 5.0);
        assert_eq!((a * 2.0).pj(), 14.0);
        assert_eq!((a / 7.0).pj(), 1.0);
        assert_eq!((a * 3u64).pj(), 21.0);
        let mut b = Energy::ZERO;
        b += a;
        assert_eq!(b.pj(), 7.0);
    }

    #[test]
    fn sum_iterates() {
        let total: Energy = (1..=4).map(|i| Energy::from_pj(i as f64)).sum();
        assert_eq!(total.pj(), 10.0);
        let t: Time = vec![Time::from_ns(1.0), Time::from_ns(2.0)].into_iter().sum();
        assert_eq!(t.ns(), 3.0);
    }

    #[test]
    fn ratio_and_scale() {
        let a = Energy::from_nj(2.0);
        let b = Energy::from_nj(8.0);
        assert!((a.ratio_to(b) - 0.25).abs() < 1e-12);
        assert_eq!(a.scaled(4.0), b);
        assert_eq!(Power::from_mw(2.0).scaled(0.5).mw(), 1.0);
        assert_eq!(Time::from_ns(2.0).scaled(3.0).ns(), 6.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Energy::from_pj(1.0).to_string(), "1.000 pJ");
        assert_eq!(Energy::from_nj(2.5).to_string(), "2.500 nJ");
        assert_eq!(Energy::from_joules(1.5).to_string(), "1.500 J");
        assert_eq!(Power::from_watts(2.0).to_string(), "2.000 W");
        assert_eq!(Power::from_mw(3.0).to_string(), "3.000 mW");
        assert_eq!(Time::from_ms(12.0).to_string(), "12.000 ms");
        assert_eq!(Time::from_secs(2.0).to_string(), "2.000 s");
    }

    #[test]
    fn time_conversions() {
        assert_eq!(Time::from_secs(1.0).ns(), 1e9);
        assert_eq!(Time::from_ms(1.0).ns(), 1e6);
        assert_eq!(Time::from_us(1.0).ns(), 1e3);
        assert!((Time::from_ms(10.0).secs() - 0.01).abs() < 1e-15);
        assert!((Time::from_secs(0.5).ms() - 500.0).abs() < 1e-9);
    }
}
