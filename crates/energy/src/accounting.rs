//! Energy accounting over a simulation run.
//!
//! [`EnergyAccountant`] integrates the four components of cache energy —
//! read dynamic, write dynamic, leakage over time (scaled by the active
//! way fraction, modelling power gating), and refresh — against a
//! concrete [`Technology`]. The resulting [`EnergyBreakdown`] is what the
//! paper's energy tables (T2) are built from.

use crate::retention::RetentionClass;
use crate::sram::SramBank;
use crate::sttram::SttRamBank;
use crate::tech::{MemoryTechnology, TechNode};
use crate::units::{Energy, Power, Time};

/// A concrete memory technology for a cache segment.
///
/// A closed enum (rather than a trait object) so simulator state stays
/// `Copy`, comparable, and serializable to reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Technology {
    /// SRAM bank.
    Sram(SramBank),
    /// STT-RAM bank.
    SttRam(SttRamBank),
}

impl Technology {
    /// Convenience: an SRAM bank at the default node.
    pub fn sram(capacity_bytes: u64, ways: u32) -> Self {
        Technology::Sram(SramBank::new(capacity_bytes, ways, TechNode::Nm45))
    }

    /// Convenience: an STT-RAM bank at the default node.
    pub fn sttram(capacity_bytes: u64, ways: u32, retention: RetentionClass) -> Self {
        Technology::SttRam(SttRamBank::new(
            capacity_bytes,
            ways,
            retention,
            TechNode::Nm45,
        ))
    }

    /// The retention class, if this is an STT-RAM bank.
    pub fn retention(&self) -> Option<RetentionClass> {
        match self {
            Technology::Sram(_) => None,
            Technology::SttRam(b) => Some(b.retention()),
        }
    }
}

impl MemoryTechnology for Technology {
    fn read_energy(&self) -> Energy {
        match self {
            Technology::Sram(b) => b.read_energy(),
            Technology::SttRam(b) => b.read_energy(),
        }
    }

    fn write_energy(&self) -> Energy {
        match self {
            Technology::Sram(b) => b.write_energy(),
            Technology::SttRam(b) => b.write_energy(),
        }
    }

    fn leakage_power(&self) -> Power {
        match self {
            Technology::Sram(b) => b.leakage_power(),
            Technology::SttRam(b) => b.leakage_power(),
        }
    }

    fn read_latency(&self) -> Time {
        match self {
            Technology::Sram(b) => b.read_latency(),
            Technology::SttRam(b) => b.read_latency(),
        }
    }

    fn write_latency(&self) -> Time {
        match self {
            Technology::Sram(b) => b.write_latency(),
            Technology::SttRam(b) => b.write_latency(),
        }
    }

    fn capacity_bytes(&self) -> u64 {
        match self {
            Technology::Sram(b) => b.capacity_bytes(),
            Technology::SttRam(b) => b.capacity_bytes(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Technology::Sram(b) => b.label(),
            Technology::SttRam(b) => b.label(),
        }
    }
}

/// Energy totals split by component.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic energy of read accesses.
    pub read: Energy,
    /// Dynamic energy of write accesses.
    pub write: Energy,
    /// Static leakage integrated over time.
    pub leakage: Energy,
    /// Refresh / expiry-handling writes (STT-RAM only).
    pub refresh: Energy,
}

impl EnergyBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy.
    pub fn total(&self) -> Energy {
        self.read + self.write + self.leakage + self.refresh
    }

    /// Dynamic (read + write) energy.
    pub fn dynamic(&self) -> Energy {
        self.read + self.write
    }

    /// Leakage share of the total (`0.0` for an empty breakdown).
    pub fn leakage_fraction(&self) -> f64 {
        let t = self.total().pj();
        if t == 0.0 {
            0.0
        } else {
            self.leakage.pj() / t
        }
    }

    /// Total relative to a baseline's total.
    ///
    /// Returns `f64::NAN` if the baseline total is zero.
    pub fn normalized_to(&self, baseline: &EnergyBreakdown) -> f64 {
        self.total().ratio_to(baseline.total())
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.read += other.read;
        self.write += other.write;
        self.leakage += other.leakage;
        self.refresh += other.refresh;
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {} (read {}, write {}, leak {}, refresh {})",
            self.total(),
            self.read,
            self.write,
            self.leakage,
            self.refresh
        )
    }
}

/// Integrates energy for one bank over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyAccountant {
    bank: Technology,
    breakdown: EnergyBreakdown,
}

impl EnergyAccountant {
    /// Creates an accountant for `bank`.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_energy::{EnergyAccountant, Technology, Time};
    ///
    /// let mut acct = EnergyAccountant::new(Technology::sram(1 << 20, 16));
    /// acct.record_reads(1000);
    /// acct.accrue_leakage(Time::from_ms(1.0), 1.0);
    /// assert!(acct.breakdown().leakage.nj() > 0.0);
    /// ```
    pub fn new(bank: Technology) -> Self {
        Self {
            bank,
            breakdown: EnergyBreakdown::new(),
        }
    }

    /// The bank being accounted.
    pub fn bank(&self) -> &Technology {
        &self.bank
    }

    /// Replaces the bank model (used when a segment is re-sized); energy
    /// already accrued is kept.
    pub fn set_bank(&mut self, bank: Technology) {
        self.bank = bank;
    }

    /// Records `n` read accesses.
    pub fn record_reads(&mut self, n: u64) {
        self.breakdown.read += self.bank.read_energy() * n;
    }

    /// Records `n` write accesses.
    pub fn record_writes(&mut self, n: u64) {
        self.breakdown.write += self.bank.write_energy() * n;
    }

    /// Records `n` refresh block-writes.
    pub fn record_refreshes(&mut self, n: u64) {
        self.breakdown.refresh += self.bank.write_energy() * n;
    }

    /// Accrues leakage for `elapsed` wall-clock time with the given
    /// fraction of the bank powered on (way power-gating).
    ///
    /// # Panics
    ///
    /// Panics if `active_fraction` is outside `[0, 1]`.
    pub fn accrue_leakage(&mut self, elapsed: Time, active_fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&active_fraction),
            "active fraction must be in [0,1], got {active_fraction}"
        );
        self.breakdown.leakage += self.bank.leakage_power().scaled(active_fraction) * elapsed;
    }

    /// The accumulated breakdown.
    pub fn breakdown(&self) -> &EnergyBreakdown {
        &self.breakdown
    }

    /// Resets accumulated energy to zero.
    pub fn reset(&mut self) {
        self.breakdown = EnergyBreakdown::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technology_delegates() {
        let sram = Technology::sram(1 << 20, 16);
        let stt = Technology::sttram(1 << 20, 16, RetentionClass::OneSecond);
        assert_eq!(sram.label(), "SRAM");
        assert_eq!(stt.label(), "STT-RAM");
        assert_eq!(sram.capacity_bytes(), 1 << 20);
        assert!(stt.leakage_power().mw() < sram.leakage_power().mw());
        assert_eq!(sram.retention(), None);
        assert_eq!(stt.retention(), Some(RetentionClass::OneSecond));
    }

    #[test]
    fn accountant_sums_components() {
        let mut a = EnergyAccountant::new(Technology::sram(1 << 20, 16));
        a.record_reads(10);
        a.record_writes(5);
        a.accrue_leakage(Time::from_us(1.0), 1.0);
        let b = a.breakdown();
        let read = a.bank().read_energy() * 10;
        let write = a.bank().write_energy() * 5;
        assert!((b.read.pj() - read.pj()).abs() < 1e-9);
        assert!((b.write.pj() - write.pj()).abs() < 1e-9);
        assert!(b.leakage.pj() > 0.0);
        assert_eq!(b.refresh, Energy::ZERO);
        assert!((b.total().pj() - (b.read + b.write + b.leakage).pj()).abs() < 1e-9);
    }

    #[test]
    fn power_gating_halves_leakage() {
        let mk = || EnergyAccountant::new(Technology::sram(1 << 20, 16));
        let mut full = mk();
        full.accrue_leakage(Time::from_ms(1.0), 1.0);
        let mut half = mk();
        half.accrue_leakage(Time::from_ms(1.0), 0.5);
        let ratio = half.breakdown().leakage.pj() / full.breakdown().leakage.pj();
        assert!((ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn refresh_uses_write_energy() {
        let mut a = EnergyAccountant::new(Technology::sttram(
            1 << 20,
            16,
            RetentionClass::TenMillis,
        ));
        a.record_refreshes(3);
        let expected = a.bank().write_energy() * 3;
        assert!((a.breakdown().refresh.pj() - expected.pj()).abs() < 1e-9);
    }

    #[test]
    fn breakdown_normalization_and_merge() {
        let mut base = EnergyBreakdown::new();
        base.read = Energy::from_nj(8.0);
        base.leakage = Energy::from_nj(2.0);
        let mut x = EnergyBreakdown::new();
        x.read = Energy::from_nj(1.0);
        x.write = Energy::from_nj(1.0);
        x.refresh = Energy::from_nj(0.5);
        assert!((x.normalized_to(&base) - 0.25).abs() < 1e-12);
        assert!((base.leakage_fraction() - 0.2).abs() < 1e-12);
        let mut m = base;
        m.merge(&x);
        assert!((m.total().nj() - 12.5).abs() < 1e-9);
        assert!((m.dynamic().nj() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn set_bank_keeps_accrued_energy() {
        let mut a = EnergyAccountant::new(Technology::sram(1 << 20, 16));
        a.record_reads(100);
        let before = a.breakdown().read;
        a.set_bank(Technology::sram(512 << 10, 8));
        assert_eq!(a.breakdown().read, before);
        assert_eq!(a.bank().capacity_bytes(), 512 << 10);
    }

    #[test]
    fn reset_zeroes() {
        let mut a = EnergyAccountant::new(Technology::sram(1 << 20, 16));
        a.record_reads(1);
        a.reset();
        assert_eq!(a.breakdown().total(), Energy::ZERO);
    }

    #[test]
    #[should_panic(expected = "active fraction")]
    fn bad_active_fraction_panics() {
        let mut a = EnergyAccountant::new(Technology::sram(1 << 20, 16));
        a.accrue_leakage(Time::from_ns(1.0), 1.5);
    }

    #[test]
    fn display_mentions_components() {
        let mut b = EnergyBreakdown::new();
        b.read = Energy::from_nj(1.0);
        let s = b.to_string();
        assert!(s.contains("read") && s.contains("leak"));
    }
}
