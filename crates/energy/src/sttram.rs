//! Analytic STT-RAM bank model with retention-dependent writes.
//!
//! The MTJ write cost is driven by the thermal stability factor Δ of the
//! cell (see [`RetentionClass`]): the switching current grows roughly
//! linearly with Δ, so write **energy** grows ~quadratically
//! (`E ∝ I²·t`) and write **latency** grows super-linearly. Read cost and
//! latency are Δ-independent (sensing, not switching). Cell leakage is
//! zero; only the CMOS periphery leaks.
//!
//! Anchors at 45 nm, 1 MiB, 16-way, matching the relative operating
//! points reported by the multi-retention STT-RAM cache literature
//! (Smullen+ HPCA'11, Sun+ DAC'11, Jog+ DAC'12):
//!
//! | quantity | anchor |
//! |----------|--------|
//! | read energy | 0.75 nJ (≈ 0.94× SRAM) |
//! | read latency | 11 ns (≈ 1.1× SRAM) |
//! | write energy @Δ=40 | 3.5 nJ (≈ 4× SRAM write) |
//! | write latency @Δ=40 | 1.5 + 8.5·(Δ/40)^1.5 ns → 10 ns |
//! | leakage | 8 % of equal-capacity SRAM |

use crate::retention::RetentionClass;
use crate::sram::{SramBank, ANCHOR_CAPACITY, ANCHOR_WAYS};
use crate::tech::{MemoryTechnology, TechNode};
use crate::units::{Energy, Power, Time};

/// Read energy at the anchor geometry.
const ANCHOR_READ_NJ: f64 = 0.75;
/// Read latency at the anchor geometry.
const ANCHOR_READ_LAT_NS: f64 = 11.0;
/// MTJ write energy at Δ = 40 (10-year retention), anchor geometry.
const ANCHOR_WRITE_NJ_D40: f64 = 3.5;
/// Reference Δ for the anchors.
const DELTA_REF: f64 = 40.0;
/// Fixed component of write latency (periphery), ns.
const WRITE_LAT_BASE_NS: f64 = 1.5;
/// Δ-dependent component of write latency at Δ = 40, ns.
const WRITE_LAT_DELTA_NS: f64 = 8.5;
/// Periphery leakage as a fraction of equal-capacity SRAM leakage.
const LEAKAGE_FRACTION: f64 = 0.08;
/// Fraction of the read path a write re-traverses before the pulse.
const WRITE_PERIPHERY_SHARE: f64 = 0.6;
/// STT-RAM cell area relative to a 6T SRAM cell.
pub const CELL_AREA_RATIO: f64 = 1.0 / 3.0;

/// An STT-RAM bank's operating parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SttRamBank {
    capacity: u64,
    ways: u32,
    tech: TechNode,
    retention: RetentionClass,
    read_energy: Energy,
    write_energy: Energy,
    leakage: Power,
    read_latency: Time,
    write_latency: Time,
}

impl SttRamBank {
    /// Models a bank with the given retention class.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` or `ways` is zero, or the retention time
    /// is non-positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_energy::{MemoryTechnology, RetentionClass, SttRamBank, TechNode};
    ///
    /// let hi = SttRamBank::new(1 << 20, 16, RetentionClass::TenYears, TechNode::Nm45);
    /// let lo = SttRamBank::new(1 << 20, 16, RetentionClass::TenMillis, TechNode::Nm45);
    /// // Shorter retention makes writes much cheaper and faster.
    /// assert!(lo.write_energy().nj() < 0.4 * hi.write_energy().nj());
    /// assert!(lo.write_latency().ns() < hi.write_latency().ns());
    /// ```
    pub fn new(
        capacity_bytes: u64,
        ways: u32,
        retention: RetentionClass,
        tech: TechNode,
    ) -> Self {
        assert!(capacity_bytes > 0, "capacity must be non-zero");
        assert!(ways > 0, "ways must be non-zero");
        let delta = retention.delta();
        let c = capacity_bytes as f64 / ANCHOR_CAPACITY as f64;
        let a = f64::from(ways) / f64::from(ANCHOR_WAYS);
        let periph_scale = c.powf(0.5) * a.powf(0.15) * tech.dynamic_scale();

        // Read path: sensing only, Δ-independent; scales like SRAM
        // periphery.
        let read_energy = Energy::from_nj(ANCHOR_READ_NJ * periph_scale);
        let read_latency =
            Time::from_ns(ANCHOR_READ_LAT_NS * c.powf(0.3) * tech.latency_scale());

        // Write path: MTJ switching dominates. E ∝ (Δ/Δref)² with a small
        // periphery component that scales like reads.
        let mtj = ANCHOR_WRITE_NJ_D40 * (delta / DELTA_REF).powi(2);
        let periphery = 0.40 * periph_scale;
        let write_energy = Energy::from_nj(mtj + periphery);

        // A write traverses most of the read periphery (decode, drivers)
        // before the MTJ switching pulse, so total write latency is the
        // periphery share of the read path plus the Δ-dependent pulse.
        let pulse_ns = WRITE_LAT_BASE_NS + WRITE_LAT_DELTA_NS * (delta / DELTA_REF).powf(1.5);
        let write_latency =
            Time::from_ns(read_latency.ns() * WRITE_PERIPHERY_SHARE + pulse_ns * tech.latency_scale());

        // Leakage: periphery only, a fixed fraction of equal SRAM.
        let sram_equiv = SramBank::new(capacity_bytes, ways, tech);
        let leakage = sram_equiv.leakage_power().scaled(LEAKAGE_FRACTION);

        Self {
            capacity: capacity_bytes,
            ways,
            tech,
            retention,
            read_energy,
            write_energy,
            leakage,
            read_latency,
            write_latency,
        }
    }

    /// Re-scales the periphery leakage to a die temperature. The MTJ
    /// cells themselves do not leak; note that retention time also drops
    /// at high temperature in reality — that second-order effect is not
    /// modelled.
    pub fn at_temperature(mut self, t: crate::tech::Temperature) -> Self {
        self.leakage = self.leakage.scaled(t.leakage_scale());
        self
    }

    /// The retention class of this bank's cells.
    pub fn retention(&self) -> RetentionClass {
        self.retention
    }

    /// The process node.
    pub fn tech(&self) -> TechNode {
        self.tech
    }

    /// Associativity the bank was modelled with.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Leakage power of a single way.
    pub fn way_leakage(&self) -> Power {
        self.leakage.scaled(1.0 / f64::from(self.ways))
    }

    /// Energy to refresh (rewrite) one block — equal to a write.
    pub fn refresh_energy(&self) -> Energy {
        self.write_energy
    }

    /// Estimated silicon area relative to an equal-capacity SRAM bank
    /// (cells only; periphery ignored).
    pub fn relative_area(&self) -> f64 {
        CELL_AREA_RATIO
    }
}

impl MemoryTechnology for SttRamBank {
    fn read_energy(&self) -> Energy {
        self.read_energy
    }

    fn write_energy(&self) -> Energy {
        self.write_energy
    }

    fn leakage_power(&self) -> Power {
        self.leakage
    }

    fn read_latency(&self) -> Time {
        self.read_latency
    }

    fn write_latency(&self) -> Time {
        self.write_latency
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn label(&self) -> &'static str {
        "STT-RAM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(rc: RetentionClass) -> SttRamBank {
        SttRamBank::new(1 << 20, 16, rc, TechNode::Nm45)
    }

    #[test]
    fn anchor_write_cost_at_ten_years() {
        let b = bank(RetentionClass::TenYears);
        // Δ≈40.3 so slightly above the Δ=40 anchor, plus 0.4 nJ periphery.
        assert!((b.write_energy().nj() - 3.96).abs() < 0.2, "{}", b.write_energy().nj());
        // 0.6 × 11 ns periphery + ~10 ns pulse.
        assert!((b.write_latency().ns() - 16.7).abs() < 0.7, "{}", b.write_latency().ns());
        assert_eq!(b.label(), "STT-RAM");
    }

    #[test]
    fn leakage_is_small_fraction_of_sram() {
        let stt = bank(RetentionClass::TenYears);
        let sram = SramBank::new(1 << 20, 16, TechNode::Nm45);
        let frac = stt.leakage_power().mw() / sram.leakage_power().mw();
        assert!((frac - 0.08).abs() < 1e-9);
    }

    #[test]
    fn retention_independent_reads() {
        let hi = bank(RetentionClass::TenYears);
        let lo = bank(RetentionClass::TenMillis);
        assert_eq!(hi.read_energy(), lo.read_energy());
        assert_eq!(hi.read_latency(), lo.read_latency());
        assert_eq!(hi.leakage_power(), lo.leakage_power());
    }

    #[test]
    fn write_cost_monotone_in_retention() {
        let mut prev_e = f64::INFINITY;
        let mut prev_l = f64::INFINITY;
        for rc in RetentionClass::SWEEP {
            let b = bank(rc);
            assert!(b.write_energy().nj() < prev_e);
            assert!(b.write_latency().ns() < prev_l);
            prev_e = b.write_energy().nj();
            prev_l = b.write_latency().ns();
        }
    }

    #[test]
    fn short_retention_write_approaches_read_cost_scale() {
        let lo = bank(RetentionClass::TenMillis);
        // Low-retention writes should be within ~2x of reads — the point
        // of the paper's short-retention kernel segment.
        let ratio = lo.write_energy().nj() / lo.read_energy().nj();
        assert!(ratio < 3.0, "write/read ratio {ratio}");
    }

    #[test]
    fn refresh_equals_write() {
        let b = bank(RetentionClass::TenMillis);
        assert_eq!(b.refresh_energy(), b.write_energy());
    }

    #[test]
    fn reads_cheaper_than_sram_writes_slower() {
        let stt = bank(RetentionClass::TenYears);
        let sram = SramBank::new(1 << 20, 16, TechNode::Nm45);
        assert!(stt.read_energy().nj() < sram.read_energy().nj());
        assert!(stt.write_latency().ns() > sram.write_latency().ns() * 0.9);
        assert!(stt.read_latency().ns() >= sram.read_latency().ns());
    }

    #[test]
    fn way_leakage_partitions_total() {
        let b = bank(RetentionClass::OneSecond);
        assert!((b.way_leakage().mw() * 16.0 - b.leakage_power().mw()).abs() < 1e-9);
        assert_eq!(b.ways(), 16);
        assert!((b.relative_area() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_scaling_applies_to_periphery() {
        let small = SttRamBank::new(256 << 10, 16, RetentionClass::TenYears, TechNode::Nm45);
        let big = SttRamBank::new(4 << 20, 16, RetentionClass::TenYears, TechNode::Nm45);
        assert!(small.read_energy().nj() < big.read_energy().nj());
        assert!(small.leakage_power().mw() < big.leakage_power().mw());
        // MTJ component dominates writes, so write energy grows slowly.
        let ratio = big.write_energy().nj() / small.write_energy().nj();
        assert!(ratio < 1.3, "write energy should be MTJ-dominated, got {ratio}");
    }
}
