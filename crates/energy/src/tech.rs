//! Technology nodes and the common memory-bank interface.

use crate::units::{Energy, Power, Time};

/// CMOS process node of the memory periphery.
///
/// Scale factors are normalized to the 45 nm anchor used by the paper's
/// era of mobile SoCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[derive(Default)]
pub enum TechNode {
    /// 65 nm.
    Nm65,
    /// 45 nm (the calibration anchor).
    #[default]
    Nm45,
    /// 32 nm.
    Nm32,
}


impl TechNode {
    /// Dynamic-energy multiplier relative to 45 nm
    /// (capacitance shrinks with feature size).
    pub fn dynamic_scale(self) -> f64 {
        match self {
            TechNode::Nm65 => 1.6,
            TechNode::Nm45 => 1.0,
            TechNode::Nm32 => 0.65,
        }
    }

    /// Leakage-power multiplier relative to 45 nm (leakage worsens per
    /// transistor at smaller nodes but fewer/smaller transistors; net
    /// factors follow ITRS-era reporting).
    pub fn leakage_scale(self) -> f64 {
        match self {
            TechNode::Nm65 => 0.8,
            TechNode::Nm45 => 1.0,
            TechNode::Nm32 => 1.3,
        }
    }

    /// Latency multiplier relative to 45 nm.
    pub fn latency_scale(self) -> f64 {
        match self {
            TechNode::Nm65 => 1.25,
            TechNode::Nm45 => 1.0,
            TechNode::Nm32 => 0.85,
        }
    }
}

impl std::fmt::Display for TechNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechNode::Nm65 => f.write_str("65nm"),
            TechNode::Nm45 => f.write_str("45nm"),
            TechNode::Nm32 => f.write_str("32nm"),
        }
    }
}

/// Die temperature in degrees Celsius.
///
/// Sub-threshold leakage grows roughly exponentially with temperature —
/// a first-order concern in passively-cooled phones. The scale factor
/// doubles leakage every [`LEAKAGE_DOUBLING_C`] degrees relative to the
/// [`Temperature::REFERENCE`] calibration point.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Temperature(f64);

/// Degrees Celsius over which leakage doubles.
pub const LEAKAGE_DOUBLING_C: f64 = 25.0;

impl Temperature {
    /// The calibration reference (all anchor leakage numbers are quoted
    /// at this temperature).
    pub const REFERENCE: Temperature = Temperature(60.0);

    /// From degrees Celsius.
    ///
    /// # Panics
    ///
    /// Panics outside the plausible silicon range `[-40, 125]`.
    pub fn from_celsius(c: f64) -> Self {
        assert!(
            (-40.0..=125.0).contains(&c),
            "temperature {c} C outside the supported range"
        );
        Temperature(c)
    }

    /// In degrees Celsius.
    pub fn celsius(&self) -> f64 {
        self.0
    }

    /// Leakage multiplier relative to the reference temperature.
    pub fn leakage_scale(&self) -> f64 {
        2f64.powf((self.0 - Self::REFERENCE.0) / LEAKAGE_DOUBLING_C)
    }
}

impl Default for Temperature {
    fn default() -> Self {
        Self::REFERENCE
    }
}

impl std::fmt::Display for Temperature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0} C", self.0)
    }
}

/// Per-bank operating parameters every memory technology exposes.
///
/// Implemented by [`SramBank`](crate::sram::SramBank) and
/// [`SttRamBank`](crate::sttram::SttRamBank); the accounting layer and the
/// simulator program against this trait so SRAM and STT-RAM designs are
/// interchangeable.
pub trait MemoryTechnology {
    /// Energy of one read access (one line).
    fn read_energy(&self) -> Energy;
    /// Energy of one write access (one line).
    fn write_energy(&self) -> Energy;
    /// Static leakage power of the whole bank when fully powered.
    fn leakage_power(&self) -> Power;
    /// Latency of a read access.
    fn read_latency(&self) -> Time;
    /// Latency of a write access.
    fn write_latency(&self) -> Time;
    /// Bank capacity in bytes.
    fn capacity_bytes(&self) -> u64;
    /// Short technology label for reports (e.g. `"SRAM"`).
    fn label(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_anchored_at_45nm() {
        assert_eq!(TechNode::Nm45.dynamic_scale(), 1.0);
        assert_eq!(TechNode::Nm45.leakage_scale(), 1.0);
        assert_eq!(TechNode::Nm45.latency_scale(), 1.0);
        assert_eq!(TechNode::default(), TechNode::Nm45);
    }

    #[test]
    fn smaller_nodes_cost_less_dynamic_energy() {
        assert!(TechNode::Nm32.dynamic_scale() < TechNode::Nm45.dynamic_scale());
        assert!(TechNode::Nm45.dynamic_scale() < TechNode::Nm65.dynamic_scale());
    }

    #[test]
    fn temperature_scaling() {
        assert_eq!(Temperature::default(), Temperature::REFERENCE);
        assert!((Temperature::REFERENCE.leakage_scale() - 1.0).abs() < 1e-12);
        let hot = Temperature::from_celsius(85.0);
        assert!((hot.leakage_scale() - 2.0).abs() < 1e-9, "{}", hot.leakage_scale());
        let cold = Temperature::from_celsius(35.0);
        assert!((cold.leakage_scale() - 0.5).abs() < 1e-9);
        assert_eq!(hot.to_string(), "85 C");
    }

    #[test]
    #[should_panic(expected = "outside the supported range")]
    fn absurd_temperature_panics() {
        Temperature::from_celsius(300.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(TechNode::Nm32.to_string(), "32nm");
        assert_eq!(TechNode::Nm45.to_string(), "45nm");
        assert_eq!(TechNode::Nm65.to_string(), "65nm");
    }
}
