//! Silicon-area model.
//!
//! The paper's STT-RAM argument is not only about energy: an MTJ cell is
//! roughly a third of a 6T SRAM cell, so the proposed designs also shrink
//! the L2's die area (or, equivalently, triple its capacity per mm²).
//! This module provides a simple cell-count area model used by the area
//! extension experiment (A1).

use crate::accounting::Technology;
use crate::sttram::CELL_AREA_RATIO;

/// Area of a 6T SRAM bitcell at the 45 nm anchor node, in µm².
pub const SRAM_CELL_UM2: f64 = 0.40;

/// Periphery (decoders, sense amps, wiring) overhead as a fraction of the
/// cell-array area.
pub const PERIPHERY_OVERHEAD: f64 = 0.35;

/// Area in mm² of a memory array of `capacity_bytes` using cells of
/// `cell_um2` µm², including periphery overhead.
///
/// # Panics
///
/// Panics if `cell_um2` is not positive.
pub fn array_area_mm2(capacity_bytes: u64, cell_um2: f64) -> f64 {
    assert!(cell_um2 > 0.0, "cell area must be positive");
    let bits = capacity_bytes as f64 * 8.0;
    bits * cell_um2 * (1.0 + PERIPHERY_OVERHEAD) / 1e6
}

/// Area in mm² of a [`Technology`] bank (SRAM or STT-RAM cells).
pub fn bank_area_mm2(bank: &Technology) -> f64 {
    use crate::tech::MemoryTechnology;
    let cell = match bank {
        Technology::Sram(_) => SRAM_CELL_UM2,
        Technology::SttRam(_) => SRAM_CELL_UM2 * CELL_AREA_RATIO,
    };
    array_area_mm2(bank.capacity_bytes(), cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retention::RetentionClass;

    #[test]
    fn two_mib_sram_is_a_few_square_millimetres() {
        let a = array_area_mm2(2 << 20, SRAM_CELL_UM2);
        // 16.8 Mbit × 0.4 µm² × 1.35 ≈ 9.1 mm².
        assert!((a - 9.06).abs() < 0.1, "area {a}");
    }

    #[test]
    fn sttram_is_about_a_third_of_sram() {
        let sram = bank_area_mm2(&Technology::sram(2 << 20, 16));
        let stt = bank_area_mm2(&Technology::sttram(
            2 << 20,
            16,
            RetentionClass::TenMillis,
        ));
        let ratio = stt / sram;
        assert!((ratio - CELL_AREA_RATIO).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn area_scales_linearly_with_capacity() {
        let one = array_area_mm2(1 << 20, SRAM_CELL_UM2);
        let four = array_area_mm2(4 << 20, SRAM_CELL_UM2);
        assert!((four / one - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_area_panics() {
        array_area_mm2(1 << 20, 0.0);
    }
}
