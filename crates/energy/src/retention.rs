//! STT-RAM retention classes.
//!
//! An MTJ cell retains its state for a time exponential in its thermal
//! stability factor Δ: `t_ret = τ₀ · e^Δ` with `τ₀ ≈ 1 ns`. Lowering Δ
//! (by shrinking the free layer's planar area) makes writes faster and
//! cheaper at the cost of volatility — the knob the paper's
//! multi-retention design turns (claims C5/C8).

use crate::units::Time;

/// Attempt period τ₀ of the MTJ thermal activation model, in nanoseconds.
pub const TAU0_NS: f64 = 1.0;

/// Standard retention classes from the multi-retention STT-RAM
/// literature, plus [`RetentionClass::Custom`] for sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetentionClass {
    /// ≈10 years: the "non-volatile" design point (Δ ≈ 40).
    TenYears,
    /// 10 seconds (Δ ≈ 23).
    TenSeconds,
    /// 1 second (Δ ≈ 20.7).
    OneSecond,
    /// 100 milliseconds (Δ ≈ 18.4).
    HundredMillis,
    /// 10 milliseconds (Δ ≈ 16.1).
    TenMillis,
    /// Arbitrary retention time for design-space sweeps.
    Custom(Time),
}

impl RetentionClass {
    /// The classes used in the paper-style retention sweep, longest first.
    pub const SWEEP: [RetentionClass; 5] = [
        RetentionClass::TenYears,
        RetentionClass::TenSeconds,
        RetentionClass::OneSecond,
        RetentionClass::HundredMillis,
        RetentionClass::TenMillis,
    ];

    /// Retention duration.
    pub fn duration(self) -> Time {
        match self {
            RetentionClass::TenYears => Time::from_secs(10.0 * 365.25 * 86_400.0),
            RetentionClass::TenSeconds => Time::from_secs(10.0),
            RetentionClass::OneSecond => Time::from_secs(1.0),
            RetentionClass::HundredMillis => Time::from_ms(100.0),
            RetentionClass::TenMillis => Time::from_ms(10.0),
            RetentionClass::Custom(t) => t,
        }
    }

    /// Thermal stability factor Δ = ln(t_ret / τ₀).
    ///
    /// # Panics
    ///
    /// Panics for non-positive custom retention times.
    pub fn delta(self) -> f64 {
        let t_ns = self.duration().ns();
        assert!(t_ns > 0.0, "retention time must be positive");
        (t_ns / TAU0_NS).ln()
    }

    /// Returns `true` if blocks can expire on realistic timescales and the
    /// cache must handle expiry (refresh or invalidate).
    ///
    /// The 10-year class is treated as effectively non-volatile.
    pub fn is_volatile(self) -> bool {
        self.duration().secs() < 3600.0
    }

    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            RetentionClass::TenYears => "10yr".to_string(),
            RetentionClass::TenSeconds => "10s".to_string(),
            RetentionClass::OneSecond => "1s".to_string(),
            RetentionClass::HundredMillis => "100ms".to_string(),
            RetentionClass::TenMillis => "10ms".to_string(),
            RetentionClass::Custom(t) => format!("{t}"),
        }
    }
}

impl std::fmt::Display for RetentionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_match_literature() {
        // Published multi-retention designs quote Δ≈40 for 10 years and
        // Δ in the high teens for ~10 ms.
        assert!((RetentionClass::TenYears.delta() - 40.3).abs() < 0.5);
        assert!((RetentionClass::OneSecond.delta() - 20.7).abs() < 0.2);
        assert!((RetentionClass::TenMillis.delta() - 16.1).abs() < 0.2);
    }

    #[test]
    fn delta_monotone_in_retention() {
        let mut prev = f64::INFINITY;
        for rc in RetentionClass::SWEEP {
            let d = rc.delta();
            assert!(d < prev, "sweep must be longest-first");
            prev = d;
        }
    }

    #[test]
    fn volatility_classification() {
        assert!(!RetentionClass::TenYears.is_volatile());
        assert!(RetentionClass::TenSeconds.is_volatile());
        assert!(RetentionClass::TenMillis.is_volatile());
        assert!(!RetentionClass::Custom(Time::from_secs(7200.0)).is_volatile());
    }

    #[test]
    fn custom_duration_roundtrip() {
        let t = Time::from_ms(42.0);
        assert_eq!(RetentionClass::Custom(t).duration(), t);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_custom_delta_panics() {
        RetentionClass::Custom(Time::ZERO).delta();
    }

    #[test]
    fn labels() {
        assert_eq!(RetentionClass::TenYears.label(), "10yr");
        assert_eq!(RetentionClass::TenMillis.to_string(), "10ms");
    }
}
