//! Analytic SRAM bank model.
//!
//! A CACTI-style model reduced to the relationships that drive the paper's
//! conclusions, anchored at a 45 nm, 1 MiB, 16-way bank:
//!
//! | quantity | anchor value | scaling with capacity `C`, assoc `A` |
//! |----------|--------------|---------------------------------------|
//! | read energy  | 0.80 nJ  | `(C/C0)^0.5 · (A/A0)^0.15`            |
//! | write energy | 0.85 nJ  | same as read                          |
//! | leakage      | 80 mW    | `C/C0` (cell count)                   |
//! | latency      | 10 ns    | `(C/C0)^0.3`                          |
//!
//! The square-root capacity exponent models bitline/wordline growth; the
//! linear leakage captures that every cell leaks whether used or not —
//! which is exactly why shrinking and power-gating a mobile L2 saves so
//! much (claims C3/C7).

use crate::tech::{MemoryTechnology, TechNode};
use crate::units::{Energy, Power, Time};

/// Calibration anchor capacity (1 MiB).
pub const ANCHOR_CAPACITY: u64 = 1 << 20;
/// Calibration anchor associativity.
pub const ANCHOR_WAYS: u32 = 16;
/// Anchor read energy.
const ANCHOR_READ_NJ: f64 = 0.80;
/// Anchor write energy.
const ANCHOR_WRITE_NJ: f64 = 0.85;
/// Anchor leakage power.
const ANCHOR_LEAK_MW: f64 = 80.0;
/// Anchor access latency.
const ANCHOR_LATENCY_NS: f64 = 10.0;

/// An SRAM bank's operating parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramBank {
    capacity: u64,
    ways: u32,
    tech: TechNode,
    read_energy: Energy,
    write_energy: Energy,
    leakage: Power,
    latency: Time,
}

impl SramBank {
    /// Models a bank of the given capacity and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` or `ways` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use moca_energy::{SramBank, TechNode, MemoryTechnology};
    ///
    /// let l2 = SramBank::new(2 << 20, 16, TechNode::Nm45);
    /// let half = SramBank::new(1 << 20, 16, TechNode::Nm45);
    /// // Leakage scales linearly with capacity.
    /// assert!((l2.leakage_power().mw() / half.leakage_power().mw() - 2.0).abs() < 1e-9);
    /// ```
    pub fn new(capacity_bytes: u64, ways: u32, tech: TechNode) -> Self {
        assert!(capacity_bytes > 0, "capacity must be non-zero");
        assert!(ways > 0, "ways must be non-zero");
        let c = capacity_bytes as f64 / ANCHOR_CAPACITY as f64;
        let a = f64::from(ways) / f64::from(ANCHOR_WAYS);
        let dyn_scale = c.powf(0.5) * a.powf(0.15) * tech.dynamic_scale();
        Self {
            capacity: capacity_bytes,
            ways,
            tech,
            read_energy: Energy::from_nj(ANCHOR_READ_NJ * dyn_scale),
            write_energy: Energy::from_nj(ANCHOR_WRITE_NJ * dyn_scale),
            leakage: Power::from_mw(ANCHOR_LEAK_MW * c * tech.leakage_scale()),
            latency: Time::from_ns(ANCHOR_LATENCY_NS * c.powf(0.3) * tech.latency_scale()),
        }
    }

    /// Re-scales the bank's leakage to a die temperature (anchors are
    /// quoted at [`Temperature::REFERENCE`]).
    ///
    /// [`Temperature::REFERENCE`]: crate::tech::Temperature::REFERENCE
    pub fn at_temperature(mut self, t: crate::tech::Temperature) -> Self {
        self.leakage = self.leakage.scaled(t.leakage_scale());
        self
    }

    /// The process node.
    pub fn tech(&self) -> TechNode {
        self.tech
    }

    /// Associativity the bank was modelled with.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Leakage power of a single way (`leakage / ways`), the granularity
    /// of way power-gating.
    pub fn way_leakage(&self) -> Power {
        self.leakage.scaled(1.0 / f64::from(self.ways))
    }
}

impl MemoryTechnology for SramBank {
    fn read_energy(&self) -> Energy {
        self.read_energy
    }

    fn write_energy(&self) -> Energy {
        self.write_energy
    }

    fn leakage_power(&self) -> Power {
        self.leakage
    }

    fn read_latency(&self) -> Time {
        self.latency
    }

    fn write_latency(&self) -> Time {
        self.latency
    }

    fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    fn label(&self) -> &'static str {
        "SRAM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_values() {
        let b = SramBank::new(ANCHOR_CAPACITY, ANCHOR_WAYS, TechNode::Nm45);
        assert!((b.read_energy().nj() - ANCHOR_READ_NJ).abs() < 1e-9);
        assert!((b.write_energy().nj() - ANCHOR_WRITE_NJ).abs() < 1e-9);
        assert!((b.leakage_power().mw() - ANCHOR_LEAK_MW).abs() < 1e-9);
        assert!((b.read_latency().ns() - ANCHOR_LATENCY_NS).abs() < 1e-9);
        assert_eq!(b.label(), "SRAM");
    }

    #[test]
    fn leakage_linear_in_capacity() {
        let one = SramBank::new(1 << 20, 16, TechNode::Nm45);
        let four = SramBank::new(4 << 20, 16, TechNode::Nm45);
        let ratio = four.leakage_power().mw() / one.leakage_power().mw();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_energy_sublinear_in_capacity() {
        let one = SramBank::new(1 << 20, 16, TechNode::Nm45);
        let four = SramBank::new(4 << 20, 16, TechNode::Nm45);
        let ratio = four.read_energy().nj() / one.read_energy().nj();
        assert!(ratio > 1.5 && ratio < 2.5, "sqrt-ish scaling, got {ratio}");
    }

    #[test]
    fn associativity_increases_access_energy() {
        let a8 = SramBank::new(1 << 20, 8, TechNode::Nm45);
        let a16 = SramBank::new(1 << 20, 16, TechNode::Nm45);
        assert!(a16.read_energy().nj() > a8.read_energy().nj());
    }

    #[test]
    fn way_leakage_partitions_total() {
        let b = SramBank::new(2 << 20, 16, TechNode::Nm45);
        let total = b.way_leakage().mw() * 16.0;
        assert!((total - b.leakage_power().mw()).abs() < 1e-9);
    }

    #[test]
    fn tech_node_scaling_applies() {
        let n45 = SramBank::new(1 << 20, 16, TechNode::Nm45);
        let n32 = SramBank::new(1 << 20, 16, TechNode::Nm32);
        assert!(n32.read_energy().nj() < n45.read_energy().nj());
        assert!(n32.leakage_power().mw() > n45.leakage_power().mw());
        assert!(n32.read_latency().ns() < n45.read_latency().ns());
        assert_eq!(n32.tech(), TechNode::Nm32);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        SramBank::new(0, 16, TechNode::Nm45);
    }
}
