//! # moca-energy — SRAM and multi-retention STT-RAM technology models
//!
//! Analytic energy/latency models for the cache banks evaluated by the
//! paper: a CACTI-style [`SramBank`] and an MTJ-physics [`SttRamBank`]
//! whose write cost depends on the [`RetentionClass`] (the
//! multi-retention knob). [`EnergyAccountant`] integrates read/write/
//! leakage/refresh energy over a simulated run.
//!
//! Absolute numbers are literature-anchored approximations; the *relative*
//! properties the paper's conclusions rest on are enforced by tests:
//!
//! * SRAM leakage is linear in capacity (shrinking saves energy);
//! * STT-RAM leaks ~8 % of equal SRAM but writes cost ~5× (at 10-year
//!   retention);
//! * lowering retention makes STT-RAM writes dramatically cheaper/faster.
//!
//! ```
//! use moca_energy::{MemoryTechnology, RetentionClass, SttRamBank, SramBank, TechNode};
//!
//! let sram = SramBank::new(2 << 20, 16, TechNode::Nm45);
//! let stt = SttRamBank::new(2 << 20, 16, RetentionClass::TenMillis, TechNode::Nm45);
//! assert!(stt.leakage_power().mw() < 0.1 * sram.leakage_power().mw());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accounting;
pub mod area;
pub mod retention;
pub mod sram;
pub mod sttram;
pub mod tech;
pub mod units;

pub use accounting::{EnergyAccountant, EnergyBreakdown, Technology};
pub use area::{array_area_mm2, bank_area_mm2};
pub use retention::RetentionClass;
pub use sram::SramBank;
pub use sttram::SttRamBank;
pub use tech::{MemoryTechnology, TechNode, Temperature};
pub use units::{Energy, Power, Time};
